"""serve-bench: trace determinism, payload schema, verification gate."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServeError
from repro.serve import (
    SERVE_BENCH_SCHEMA_VERSION,
    run_serve_bench,
    synthesize_trace,
)


class TestTrace:
    def test_deterministic_per_seed(self):
        graphs = {"a": 100, "b": 50}
        t1 = synthesize_trace(graphs, 200, seed=3)
        t2 = synthesize_trace(graphs, 200, seed=3)
        assert t1 == t2
        assert t1 != synthesize_trace(graphs, 200, seed=4)

    def test_queries_are_in_range(self):
        graphs = {"a": 37}
        for gid, source, targets in synthesize_trace(graphs, 300, seed=0):
            assert gid == "a"
            assert 0 <= source < 37
            if targets is not None:
                assert all(0 <= t < 37 for t in targets)

    def test_hot_sources_dominate(self):
        trace = synthesize_trace({"a": 10_000}, 500, seed=1, hot_sources=4)
        counts: dict = {}
        for _, source, _ in trace:
            counts[source] = counts.get(source, 0) + 1
        top4 = sorted(counts.values(), reverse=True)[:4]
        assert sum(top4) > 0.6 * len(trace)

    def test_empty_graphs_rejected(self):
        with pytest.raises(ServeError):
            synthesize_trace({}, 10)


class TestPayload:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_serve_bench(
            queries=250, scale=0.15, max_graphs=2, burst=16, seed=2,
            tag="unit",
        )

    def test_schema_versioned(self, payload):
        assert payload["schema_version"] == SERVE_BENCH_SCHEMA_VERSION
        assert payload["kind"] == "serve-bench"
        assert payload["tag"] == "unit"

    def test_required_result_fields(self, payload):
        res = payload["results"]
        assert res["served"] == 250
        for k in ("p50", "p90", "p99", "mean", "max"):
            assert res["latency_ms"][k] >= 0.0
        assert res["throughput_qps"] > 0
        assert res["batch_size_hist"]  # non-empty histogram
        # every query was served by exactly one batch
        assert sum(int(s) * n for s, n in res["batch_size_hist"].items()) == 250

    def test_cache_hit_rate_nonzero_on_skewed_trace(self, payload):
        assert payload["results"]["cache"]["hits"] > 0
        assert payload["results"]["counters"]["serve_cache_hits"] > 0

    def test_verification_passes_bit_exact(self, payload):
        assert payload["verify"]["enabled"]
        assert payload["verify"]["checked"] > 0
        assert payload["verify"]["mismatches"] == []

    def test_payload_is_json_serializable(self, payload):
        json.dumps(payload)

    def test_counters_balance(self, payload):
        c = payload["results"]["counters"]
        assert c["serve_admitted"] == 250
        assert c["serve_rejected"] == 0 and c["serve_timeouts"] == 0
        assert c["serve_batched"] + c["serve_cache_hits"] == 250


class TestOptions:
    def test_verify_can_be_skipped(self):
        payload = run_serve_bench(
            queries=40, scale=0.15, max_graphs=1, burst=8, verify=False
        )
        assert payload["verify"] == {"enabled": False, "checked": 0, "mismatches": []}

    def test_parameter_validation(self):
        with pytest.raises(ServeError):
            run_serve_bench(queries=0)
        with pytest.raises(ServeError):
            run_serve_bench(queries=10, burst=0)
