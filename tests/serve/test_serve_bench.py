"""serve-bench: trace determinism, payload schema, verification gate."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServeError
from repro.serve import (
    SERVE_BENCH_SCHEMA_VERSION,
    run_serve_bench,
    synthesize_trace,
)


class TestTrace:
    def test_deterministic_per_seed(self):
        graphs = {"a": 100, "b": 50}
        t1 = synthesize_trace(graphs, 200, seed=3)
        t2 = synthesize_trace(graphs, 200, seed=3)
        assert t1 == t2
        assert t1 != synthesize_trace(graphs, 200, seed=4)

    def test_queries_are_in_range(self):
        graphs = {"a": 37}
        for gid, source, targets in synthesize_trace(graphs, 300, seed=0):
            assert gid == "a"
            assert 0 <= source < 37
            if targets is not None:
                assert all(0 <= t < 37 for t in targets)

    def test_hot_sources_dominate(self):
        trace = synthesize_trace({"a": 10_000}, 500, seed=1, hot_sources=4)
        counts: dict = {}
        for _, source, _ in trace:
            counts[source] = counts.get(source, 0) + 1
        top4 = sorted(counts.values(), reverse=True)[:4]
        assert sum(top4) > 0.6 * len(trace)

    def test_empty_graphs_rejected(self):
        with pytest.raises(ServeError):
            synthesize_trace({}, 10)


class TestPayload:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_serve_bench(
            queries=250, scale=0.15, max_graphs=2, burst=16, seed=2,
            tag="unit",
        )

    def test_schema_versioned(self, payload):
        assert payload["schema_version"] == SERVE_BENCH_SCHEMA_VERSION
        assert payload["kind"] == "serve-bench"
        assert payload["tag"] == "unit"

    def test_required_result_fields(self, payload):
        res = payload["results"]
        assert res["served"] == 250
        for k in ("p50", "p90", "p99", "mean", "max"):
            assert res["latency_ms"][k] >= 0.0
        assert res["throughput_qps"] > 0
        assert res["batch_size_hist"]  # non-empty histogram
        # every query was served by exactly one batch
        assert sum(int(s) * n for s, n in res["batch_size_hist"].items()) == 250

    def test_cache_hit_rate_nonzero_on_skewed_trace(self, payload):
        assert payload["results"]["cache"]["hits"] > 0
        assert payload["results"]["counters"]["serve_cache_hits"] > 0

    def test_verification_passes_bit_exact(self, payload):
        assert payload["verify"]["enabled"]
        assert payload["verify"]["checked"] > 0
        assert payload["verify"]["mismatches"] == []

    def test_payload_is_json_serializable(self, payload):
        json.dumps(payload)

    def test_counters_balance(self, payload):
        c = payload["results"]["counters"]
        assert c["serve_admitted"] == 250
        assert c["serve_rejected"] == 0 and c["serve_timeouts"] == 0
        assert c["serve_batched"] + c["serve_cache_hits"] == 250


class TestOptions:
    def test_verify_can_be_skipped(self):
        payload = run_serve_bench(
            queries=40, scale=0.15, max_graphs=1, burst=8, verify=False
        )
        assert payload["verify"] == {"enabled": False, "checked": 0, "mismatches": []}

    def test_parameter_validation(self):
        with pytest.raises(ServeError):
            run_serve_bench(queries=0)
        with pytest.raises(ServeError):
            run_serve_bench(queries=10, burst=0)
        with pytest.raises(ServeError):
            run_serve_bench(queries=10, updates=-1)
        with pytest.raises(ServeError):
            run_serve_bench(queries=10, updates=1, update_size=0)


class TestUpdatesMode:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_serve_bench(
            queries=120, scale=0.15, max_graphs=2, burst=16, seed=5,
            updates=2, update_size=5,
        )

    def test_static_payload_has_null_updates_block(self):
        payload = run_serve_bench(
            queries=40, scale=0.15, max_graphs=1, burst=8, verify=False
        )
        assert payload["updates"] is None
        assert payload["config"]["updates"] == 0

    def test_updates_block_reports_both_passes(self, payload):
        upd = payload["updates"]
        assert upd["batches"] == 4  # 2 per graph × 2 graphs
        assert upd["update_size"] == 5
        assert upd["incremental_wall_s"] > 0 and upd["full_wall_s"] > 0
        assert upd["speedup"] > 0
        assert upd["incremental_solves"] > 0  # warm path actually exercised

    def test_passes_agree_bit_exactly(self, payload):
        assert payload["updates"]["pass_mismatches"] == 0

    def test_per_generation_verification_passes(self, payload):
        assert payload["verify"]["enabled"]
        assert payload["verify"]["checked"] > 0
        assert payload["verify"]["mismatches"] == []
        # at least one served answer postdates an update
        assert payload["results"]["counters"]["serve_incremental"] > 0

    def test_updates_payload_is_json_serializable(self, payload):
        json.dumps(payload)

    def test_passes_do_not_share_graph_objects(self):
        # SuiteEntry.graph() memoizes its build; if both replay passes
        # were handed that shared object, pass 1's in-place weight
        # patches would leak into pass 2, whose re-application of the
        # same stream then rejects an already-applied decrease.  This
        # seed's streams open with weight-only batches, which is exactly
        # the triggering shape.
        payload = run_serve_bench(
            queries=40, scale=0.2, max_graphs=3, burst=16, seed=7,
            updates=2, update_size=6,
        )
        assert payload["updates"]["pass_mismatches"] == 0
        assert payload["verify"]["mismatches"] == []
