"""Session: coalescing, demux, admission, timeouts, determinism.

The satellite contract, spelled out as tests:

- N same-graph queries coalesce into one dispatched batch whose unique
  sources are solved exactly once, and every query demuxes the answer
  of *its* source;
- cache hit/miss/invalidate drive the solve count (landmark reuse);
- admission past ``max_pending`` rejects synchronously, timeouts degrade
  (before dispatch when the deadline already passed, after the solve
  when the answer arrived late — the late answer still warms the cache);
- every served distance array is bit-identical to calling the solver
  directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.common import SolveRequest, get_solver_info
from repro.errors import AdmissionError, ServeError, ServeTimeout
from repro.serve import Batcher, Query, Session


def make_session(**kw):
    kw.setdefault("solver", "dijkstra")
    kw.setdefault("autostart", False)
    return Session(**kw)


class TestBatcherPlanning:
    def _q(self, graph_id, source, deadline=None):
        return Query(
            graph_id=graph_id,
            source=source,
            targets=None,
            submitted_at=0.0,
            submitted_mono=0.0,
            deadline=deadline,
        )

    def test_same_graph_queries_form_one_plan(self):
        b = Batcher(max_batch=8)
        plans, expired = b.plan([self._q("g", 0), self._q("g", 1), self._q("g", 0)], 0.0)
        assert not expired
        assert len(plans) == 1
        assert plans[0].sources == [0, 1]  # deduped, first-seen order
        assert plans[0].size == 3

    def test_graphs_split_into_separate_plans(self):
        b = Batcher(max_batch=8)
        plans, _ = b.plan([self._q("a", 0), self._q("b", 0), self._q("a", 1)], 0.0)
        assert [(p.graph_id, p.sources) for p in plans] == [("a", [0, 1]), ("b", [0])]

    def test_max_batch_caps_unique_sources(self):
        b = Batcher(max_batch=2)
        plans, _ = b.plan([self._q("g", s) for s in (0, 1, 2, 0)], 0.0)
        assert [p.sources for p in plans] == [[0, 1], [2]]
        # the repeat of source 0 rides in the chunk that solves source 0
        assert [q.source for q in plans[0].queries] == [0, 1, 0]
        assert [q.source for q in plans[1].queries] == [2]

    def test_expired_queries_never_reach_a_plan(self):
        b = Batcher()
        live, dead = self._q("g", 0), self._q("g", 1, deadline=5.0)
        plans, expired = b.plan([live, dead], now_mono=10.0)
        assert expired == [dead]
        assert [q.source for q in plans[0].queries] == [0]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Batcher(window_s=-1)
        with pytest.raises(ValueError):
            Batcher(max_batch=0)


class TestCoalescing:
    def test_n_queries_one_source_one_solve(self, small_road):
        with make_session() as s:
            s.add_graph("road", small_road)
            futs = [s.submit("road", 3) for _ in range(6)]
            s.serve_pending()
            assert s.executor.dispatched == 1  # one solve served all six
            assert len(s.batch_sizes) == 1 and s.batch_sizes[0] == 6
            dists = [f.result().dist for f in futs]
            for d in dists[1:]:
                assert d is dists[0]  # literally the same cached array

    def test_demux_routes_each_query_to_its_source(self, small_road):
        with make_session() as s:
            s.add_graph("road", small_road)
            futs = {src: s.submit("road", src) for src in (0, 5, 9)}
            s.serve_pending()
            assert s.executor.dispatched == 3
            for src, fut in futs.items():
                r = fut.result()
                assert r.source == src
                assert r.dist[src] == 0.0

    def test_target_queries_slice_the_full_solve(self, line_graph):
        with make_session() as s:
            s.add_graph("line", line_graph)
            fut = s.submit("line", 0, targets=[5, 2])
            s.serve_pending()
            r = fut.result()
            assert np.array_equal(r.target_dist, [5.0, 2.0])
            assert r.targets == (5, 2)

    def test_batch_size_metadata_and_counter(self, small_road):
        with make_session() as s:
            s.add_graph("road", small_road)
            futs = [s.submit("road", i % 2) for i in range(4)]
            s.serve_pending()
            assert all(f.result().batch_size == 4 for f in futs)
            assert s.counters()["serve_batched"] == 4
            assert s.metrics.histogram("serve_batch_size").count == 1


class TestCacheIntegration:
    def test_second_round_hits_cache(self, small_road):
        with make_session() as s:
            s.add_graph("road", small_road)
            f1 = s.submit("road", 2)
            s.serve_pending()
            f2 = s.submit("road", 2)
            s.serve_pending()
            assert s.executor.dispatched == 1
            assert not f1.result().from_cache
            assert f2.result().from_cache
            assert s.counters()["serve_cache_hits"] == 1

    def test_invalidate_forces_resolve(self, small_road):
        with make_session() as s:
            s.add_graph("road", small_road)
            s.submit("road", 2)
            s.serve_pending()
            assert s.invalidate("road") == 1
            f = s.submit("road", 2)
            s.serve_pending()
            assert s.executor.dispatched == 2
            assert not f.result().from_cache

    def test_replacing_a_graph_invalidates_its_answers(self, small_road, small_mesh):
        with make_session() as s:
            s.add_graph("g", small_road)
            s.submit("g", 0)
            s.serve_pending()
            s.add_graph("g", small_mesh)
            f = s.submit("g", 0)
            s.serve_pending()
            r = f.result()
            assert not r.from_cache
            assert r.dist.shape[0] == small_mesh.num_vertices

    def test_lru_bound_holds_under_traffic(self, small_road):
        with make_session(cache_entries=2) as s:
            s.add_graph("road", small_road)
            for src in range(5):
                s.submit("road", src)
            s.serve_pending()
            assert len(s.cache) == 2


class TestAdmissionAndErrors:
    def test_rejects_past_max_pending(self, small_road):
        with make_session(max_pending=2) as s:
            s.add_graph("road", small_road)
            s.submit("road", 0)
            s.submit("road", 1)
            with pytest.raises(AdmissionError):
                s.submit("road", 2)
            assert s.counters()["serve_rejected"] == 1
            s.serve_pending()  # queue drained -> admission reopens
            s.submit("road", 2)

    def test_unknown_graph_rejected_at_submit(self, small_road):
        with make_session() as s:
            s.add_graph("road", small_road)
            with pytest.raises(ServeError, match="unknown graph"):
                s.submit("nope", 0)

    def test_out_of_range_source_and_targets(self, line_graph):
        with make_session() as s:
            s.add_graph("line", line_graph)
            with pytest.raises(ServeError, match="out of range"):
                s.submit("line", 99)
            with pytest.raises(ServeError, match="out of range"):
                s.submit("line", 0, targets=[99])

    def test_bad_requests_consume_no_queue_space(self, small_road):
        with make_session(max_pending=1) as s:
            s.add_graph("road", small_road)
            for _ in range(3):
                with pytest.raises(ServeError):
                    s.submit("road", 10**6)
            s.submit("road", 0)  # still admitted

    def test_solver_failure_fails_the_future_not_the_session(
        self, small_road, fault_solvers
    ):
        with make_session(solver="eng-crash") as s:
            s.add_graph("road", small_road)
            f = s.submit("road", 0)
            s.serve_pending()
            with pytest.raises(ServeError, match="injected failure"):
                f.result()

    def test_submit_after_close_raises(self, small_road):
        s = make_session()
        s.add_graph("road", small_road)
        s.close()
        with pytest.raises(ServeError, match="closed"):
            s.submit("road", 0)


class TestTimeouts:
    def test_expired_before_dispatch_never_solves(self, small_road):
        with make_session() as s:
            s.add_graph("road", small_road)
            f = s.submit("road", 0, timeout_s=0.0)
            s.serve_pending()
            with pytest.raises(ServeTimeout):
                f.result()
            assert s.executor.dispatched == 0
            assert s.counters()["serve_timeouts"] == 1

    def test_late_answer_degrades_but_warms_cache(self, small_road, fault_solvers):
        # eng-hang sleeps longer than the deadline: the query times out
        # *after* the solve, and the answer still lands in the cache for
        # the next caller.
        with make_session(
            solver="eng-hang", solver_options={"hang_s": 0.05}
        ) as s:
            s.add_graph("road", small_road)
            f = s.submit("road", 0, timeout_s=0.01)
            s.serve_pending()
            with pytest.raises(ServeTimeout):
                f.result()
            assert s.counters()["serve_timeouts"] == 1
            assert s.cache.peek("road", 0) is not None
            f2 = s.submit("road", 0)
            s.serve_pending()
            assert f2.result().from_cache

    def test_default_timeout_applies(self, small_road):
        with make_session(default_timeout_s=0.0) as s:
            s.add_graph("road", small_road)
            f = s.submit("road", 0)
            s.serve_pending()
            with pytest.raises(ServeTimeout):
                f.result()


class TestDeterminism:
    def test_served_distances_bit_match_direct_solves(self, small_road, small_mesh):
        info = get_solver_info("dijkstra")
        with make_session() as s:
            s.add_graph("road", small_road)
            s.add_graph("mesh", small_mesh)
            futs = []
            for src in (0, 7, 31):
                futs.append(("road", src, s.submit("road", src)))
                futs.append(("mesh", src, s.submit("mesh", src)))
            s.serve_pending()
            # repeat traffic: cached answers must bit-match too
            futs.append(("road", 7, s.submit("road", 7)))
            s.serve_pending()
            graphs = {"road": small_road, "mesh": small_mesh}
            for gid, src, fut in futs:
                direct = info.solve(SolveRequest(graph=graphs[gid], source=src))
                assert np.array_equal(fut.result().dist, direct.dist)

    def test_device_solver_through_session(self, tiny_graph):
        from repro.calibration import sim_cost, sim_gpu

        spec = sim_gpu()
        with make_session(solver="adds", spec=spec, cost=sim_cost(spec)) as s:
            s.add_graph("fig1", tiny_graph)
            f = s.submit("fig1", 0)
            s.serve_pending()
            assert np.array_equal(f.result().dist, [0.0, 3.0, 1.0])

    def test_query_convenience_wrapper(self, line_graph):
        with make_session() as s:
            s.add_graph("line", line_graph)
            r = s.query("line", 0, targets=[3])
            assert np.array_equal(r.target_dist, [3.0])


class TestThreadedMode:
    def test_autostart_thread_serves_submissions(self, small_road):
        with Session(solver="dijkstra", window_s=0.002, autostart=True) as s:
            s.add_graph("road", small_road)
            futs = [s.submit("road", src) for src in (0, 1, 0, 2)]
            results = [f.result(timeout=30) for f in futs]
            for src, r in zip((0, 1, 0, 2), results):
                assert r.source == src and r.dist[src] == 0.0

    def test_close_drains_pending(self, small_road):
        s = Session(solver="dijkstra", window_s=0.5, autostart=True)
        s.add_graph("road", small_road)
        fut = s.submit("road", 0)
        s.close()  # does not abandon the admitted query
        assert fut.result(timeout=30).dist[0] == 0.0
