"""DistanceCache: hit/miss/LRU/invalidate semantics and landmark reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import DistanceCache


def _dist(n, offset=0.0):
    return np.arange(n, dtype=np.float64) + offset


class TestLookup:
    def test_miss_then_hit(self):
        c = DistanceCache(4)
        assert c.get("g", 0) is None
        c.put("g", 0, _dist(5))
        got = c.get("g", 0)
        assert np.array_equal(got, _dist(5))
        assert c.hits == 1 and c.misses == 1

    def test_distinct_sources_are_distinct_entries(self):
        c = DistanceCache(4)
        c.put("g", 0, _dist(5))
        c.put("g", 1, _dist(5, offset=10))
        assert np.array_equal(c.get("g", 0), _dist(5))
        assert np.array_equal(c.get("g", 1), _dist(5, offset=10))

    def test_distinct_graphs_do_not_collide(self):
        c = DistanceCache(4)
        c.put("a", 0, _dist(5))
        assert c.get("b", 0) is None

    def test_cached_array_is_read_only(self):
        c = DistanceCache(4)
        stored = c.put("g", 0, _dist(5))
        assert not stored.flags.writeable
        with pytest.raises(ValueError):
            c.get("g", 0)[0] = 99.0

    def test_landmark_targets_slice(self):
        c = DistanceCache(4)
        c.put("g", 0, _dist(10))
        got = c.targets("g", 0, [7, 2, 2])
        assert np.array_equal(got, [7.0, 2.0, 2.0])
        # the slice is a fresh writable array, not a view of the entry
        got[0] = -1.0
        assert c.peek("g", 0)[7] == 7.0

    def test_targets_miss_returns_none(self):
        c = DistanceCache(4)
        assert c.targets("g", 3, [0]) is None
        assert c.misses == 1


class TestEviction:
    def test_lru_evicts_oldest(self):
        c = DistanceCache(2)
        c.put("g", 0, _dist(3))
        c.put("g", 1, _dist(3))
        c.put("g", 2, _dist(3))  # evicts source 0
        assert c.peek("g", 0) is None
        assert c.peek("g", 1) is not None
        assert c.evictions == 1

    def test_hit_refreshes_lru_position(self):
        c = DistanceCache(2)
        c.put("g", 0, _dist(3))
        c.put("g", 1, _dist(3))
        c.get("g", 0)  # 0 becomes most-recent
        c.put("g", 2, _dist(3))  # so 1 is evicted, not 0
        assert c.peek("g", 0) is not None
        assert c.peek("g", 1) is None

    def test_reput_refreshes_not_duplicates(self):
        c = DistanceCache(2)
        c.put("g", 0, _dist(3))
        c.put("g", 0, _dist(3, offset=1))
        assert len(c) == 1
        assert np.array_equal(c.peek("g", 0), _dist(3, offset=1))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DistanceCache(0)


class TestInvalidate:
    def test_invalidate_drops_only_that_graph(self):
        c = DistanceCache(8)
        c.put("a", 0, _dist(3))
        c.put("a", 1, _dist(3))
        c.put("b", 0, _dist(3))
        assert c.invalidate("a") == 2
        assert c.peek("a", 0) is None and c.peek("a", 1) is None
        assert c.peek("b", 0) is not None
        assert c.invalidated == 2

    def test_invalidate_unknown_graph_is_noop(self):
        c = DistanceCache(8)
        assert c.invalidate("nope") == 0

    def test_invalidation_not_counted_as_eviction(self):
        c = DistanceCache(8)
        c.put("a", 0, _dist(3))
        c.invalidate("a")
        assert c.evictions == 0

    def test_stats_shape(self):
        c = DistanceCache(8)
        c.put("a", 0, _dist(3))
        c.get("a", 0)
        c.get("a", 1)
        s = c.stats()
        assert s["entries"] == 1
        assert s["hits"] == 1 and s["misses"] == 1
        assert s["hit_rate"] == 0.5
