"""Serve-test fixtures.

Same rule as ``tests/engine/conftest.py``: the eng-* fault solvers must
not leak into the global registry (suite-wide tests call every
registered solver, and ``eng-hang`` would hang them), so registration is
scoped to the tests that opt in.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def fault_solvers():
    """Register the eng-* fault solvers for one test, then remove them."""
    from repro.engine import testing

    testing.register()
    yield testing
    testing.unregister()
