#!/usr/bin/env python
"""Custom devices: the §6.5 robustness experiment on your own hardware.

The paper re-runs ADDS untouched on an RTX 3090 and the speedup *grows*
(2.9x -> 3.5x) because the dynamic scheduler adapts to the extra
bandwidth and threads.  This example repeats that experiment on the two
paper GPUs plus a hypothetical future device, using the same scaled cost
model everywhere, and prints how the controller's chosen delta responds.

Run:  python examples/custom_device.py
"""

from __future__ import annotations

from dataclasses import replace

import repro
from repro.calibration import sim_cost, sim_gpu
from repro.gpu.specs import RTX_2080TI, RTX_3090, DeviceSpec

# A made-up next-generation part: half again the SMs and double the
# bandwidth of the 3090 (per-SM resources unchanged).
FUTURE_GPU = DeviceSpec(
    name="Hypothetical GX-5000",
    sm_count=128,
    threads_per_sm=1536,
    max_clock_ghz=2.0,
    dram_bandwidth_gbs=1900.0,
    dram_gb=48.0,
    l2_mb=96.0,
    scratchpad_kb_per_sm=64,
    compute_capability="10.0",
)


def main() -> None:
    graphs = [
        repro.named_graph("road-usa-mini"),
        repro.named_graph("rmat22-mini"),
        repro.named_graph("msdoor-mini"),
    ]

    devices = [RTX_2080TI, RTX_3090, FUTURE_GPU]
    print(f"{'graph':16s}" + "".join(f"{d.name:>24s}" for d in devices))
    print(f"{'':16s}" + "".join(f"{'ADDS/NF speedup':>24s}" for _ in devices))
    for graph in graphs:
        cells = []
        for base in devices:
            spec = sim_gpu(base)
            cost = sim_cost(spec)
            adds = repro.sssp(graph, 0, spec=spec, cost=cost)
            nf = repro.sssp(graph, 0, algorithm="nf", spec=spec, cost=cost)
            cells.append(
                f"{nf.time_us / adds.time_us:6.2f}x (d->{adds.stats['final_delta']:.0f})"
            )
        print(f"{graph.name:16s}" + "".join(f"{c:>24s}" for c in cells))

    print()
    print("Device details (scaled for the simulation corpus, see repro.calibration):")
    for base in devices:
        spec = sim_gpu(base)
        print(f"  {base.name:22s}: {spec.sm_count} SMs, "
              f"{spec.total_threads} threads, {spec.dram_bandwidth_gbs:.0f} GB/s")

    print()
    print("No solver code changed between devices — only the DeviceSpec —")
    print("mirroring §6.5: 'the robustness of ADDS' mechanism for dynamically")
    print("selecting delta values, which performs well on the newer hardware")
    print("with no tuning of the source code.'")


if __name__ == "__main__":
    main()
