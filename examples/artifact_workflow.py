#!/usr/bin/env python
"""The artifact's workflow end-to-end: build_all / run_all / verify_against.

The paper's Zenodo artifact ships GR graph files, runs every solver over
them producing ``<solver>_result`` files (graph, time, work count) and
``*_final_dist`` directories, then cross-checks distances with
``verify.py``.  This example reproduces that exact pipeline on a small
corpus, including the on-disk formats.

Run:  python examples/artifact_workflow.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import repro
from repro.graphs.suite import SuiteEntry
from repro.harness import run_suite, write_result_files
from repro.validation import verify_dist_files, write_dist_file


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    inputs = out / "inputs" / "sssp-int"
    inputs.mkdir(parents=True, exist_ok=True)

    # --- step 1: produce the GR input files (inputs/sssp-int/graph.gr) ----
    corpus = [
        repro.grid_road(48, 32, seed=1, name="road-mini"),
        repro.rmat(11, seed=2, name="rmat-mini"),
        repro.fem_mesh(3000, band=20, stride=2, seed=3, name="mesh-mini"),
    ]
    for g in corpus:
        repro.write_gr(g, inputs / f"{g.name}.gr")
    print(f"wrote {len(corpus)} GR files to {inputs}")

    # --- step 2: ./run_all.sh — every solver over every input -------------
    suite = [
        SuiteEntry(name=p.stem, category="file",
                   factory=lambda p=p: repro.read_gr(p))
        for p in sorted(inputs.glob("*.gr"))
    ]
    solvers = ("adds", "nf", "gun-nf", "gun-bf", "cpu-ds", "dijkstra")
    run = run_suite(solvers=solvers, suite=suite)
    paths = write_result_files(run, out)
    print(f"result files: {', '.join(p.name for p in paths)}")
    print((out / "adds_result").read_text().rstrip())

    # --- step 3: *_final_dist directories ---------------------------------
    for solver in solvers:
        dist_dir = out / f"{solver.replace('-', '_')}_final_dist"
        dist_dir.mkdir(exist_ok=True)
        for rec in run.records:
            write_dist_file(rec.results[solver], dist_dir / rec.graph)

    # --- step 4: ./verify_against_* ----------------------------------------
    mismatches = 0
    for solver in solvers[1:]:
        for rec in run.records:
            a = out / "adds_final_dist" / rec.graph
            b = out / f"{solver.replace('-', '_')}_final_dist" / rec.graph
            bad = verify_dist_files(a, b)
            for m in bad[:3]:
                print(f"MISMATCH {solver}/{rec.graph}: {m}")
            mismatches += len(bad)
    if mismatches == 0:
        print("verify_against_*: all solvers agree on all final distances")
    else:
        raise SystemExit(f"{mismatches} mismatches found")

    print(f"\nartifact tree under {out}:")
    for p in sorted(out.rglob("*")):
        if p.is_file():
            print("  ", p.relative_to(out))


if __name__ == "__main__":
    main()
