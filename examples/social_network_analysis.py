#!/usr/bin/env python
"""Social-network analysis: the power-law workload (rmat-class graphs).

Scenario: computing weighted hop distances from an influencer account
over a social graph — "a small number of vertices have extremely high
degree, while the vast majority of vertices have low degree" (§6.1.1).
On this class every scheduler saturates the GPU, so the winner is decided
by *work efficiency* (the Figure 14 regime: "the speedup correlates
perfectly with improved work efficiency").

This example
1. generates an RMAT social graph and finds the hub,
2. runs the full solver stack from the hub,
3. shows that ordering buys little here compared to road networks
   (the paper's §3.1: "a priority queue improves the work efficiency by
   only 2x for the rmat22 graph"), and
4. ranks users by distance-from-hub (a closeness sketch).

Run:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    graph = repro.rmat(13, edge_factor=8, seed=11)
    deg = graph.out_degree()
    hub = int(np.argmax(deg))
    print(f"graph: {graph.name}  |V|={graph.num_vertices}  |E|={graph.num_edges}")
    print(f"hub: vertex {hub} with degree {int(deg[hub])} "
          f"(median degree {np.median(deg):.0f})")
    print()

    results = {
        name: repro.sssp(graph, hub, algorithm=name)
        for name in ("adds", "nf", "gun-bf", "dijkstra")
    }

    dij_work = results["dijkstra"].work_count
    print(f"{'solver':9s} {'time(us)':>10s} {'work':>7s} {'work vs optimal':>16s}")
    for name, r in results.items():
        print(f"{name:9s} {r.time_us:10.1f} {r.work_count:7d} {r.work_count / dij_work:15.2f}x")

    # §3.1's point: on power-law graphs the ordered/unordered work gap is
    # small (compare with a road network, where it's enormous)
    bf_ratio = results["gun-bf"].work_count / dij_work
    print(f"\nBellman-Ford does only {bf_ratio:.1f}x the optimal work here — "
          "ordering matters far less than on high-diameter graphs.")

    road = repro.grid_road(70, 50, seed=11)
    road_bf = repro.sssp(road, 0, algorithm="gun-bf")
    road_dij = repro.sssp(road, 0, algorithm="dijkstra")
    print(f"(on a road grid of similar size the same ratio is "
          f"{road_bf.work_count / road_dij.work_count:.1f}x)")

    # closeness sketch: the k most/least reachable users
    dist = results["adds"].dist
    finite = np.flatnonzero(np.isfinite(dist))
    order = finite[np.argsort(dist[finite])]
    print("\nclosest users to the hub:", order[1:6].tolist())
    print("most remote reachable users:", order[-5:].tolist())
    reach = finite.size / graph.num_vertices
    print(f"hub reaches {100 * reach:.0f}% of the network "
          f"(paper's selection criterion requires >=75%)")


if __name__ == "__main__":
    main()
