#!/usr/bin/env python
"""Logistics dispatch: multi-source SSSP and path reconstruction.

Scenario: a delivery company has several depots on a road network and
needs, for every address, (a) the travel time from its *nearest* depot
and (b) the actual route.  One multi-source ADDS run answers both — the
distance field is the lower envelope over depots and the shortest-path
tree roots every vertex at its nearest depot.

Run:  python examples/logistics_dispatch.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    city = repro.grid_road(90, 60, max_weight=4096, seed=21)
    n = city.num_vertices
    rng = np.random.default_rng(7)
    depots = sorted(int(v) for v in rng.choice(n, size=4, replace=False))
    print(f"road network: {n} intersections, {city.num_edges} road segments")
    print(f"depots at vertices {depots}")
    print()

    # one multi-source run instead of four single-source runs
    fleet = repro.sssp(city, depots[0], sources=depots)
    singles = [repro.sssp(city, d) for d in depots]
    envelope = np.minimum.reduce([r.dist for r in singles])
    assert np.allclose(fleet.dist, envelope)
    total_single_work = sum(r.work_count for r in singles)
    print(f"multi-source run: work {fleet.work_count} "
          f"(vs {total_single_work} for 4 separate runs, "
          f"{total_single_work / fleet.work_count:.1f}x saved), "
          f"time {fleet.time_us:.0f}us")
    print()

    # service-area sizes: which depot serves how many addresses
    # (walk each address's path back to its root depot)
    owners = np.full(n, -1)
    pred = fleet.predecessors
    for d in depots:
        owners[d] = d
    order = np.argsort(fleet.dist)  # roots settle before their subtrees
    for v in order:
        if owners[v] < 0 and pred[v] >= 0:
            owners[v] = owners[pred[v]]
    print("service areas (addresses per depot):")
    for d in depots:
        count = int((owners == d).sum())
        print(f"  depot {d:5d}: {count:5d} addresses "
              f"({100 * count / n:.0f}%)")
    print()

    # a concrete dispatch: route to the hardest-to-reach address
    far = int(np.argmax(np.where(np.isfinite(fleet.dist), fleet.dist, -1)))
    route = fleet.path_to(far)
    print(f"worst-case address: vertex {far}, travel cost {fleet.dist[far]:.0f}")
    print(f"dispatched from depot {route[0]} via {len(route)} intersections:")
    head = " -> ".join(map(str, route[:6]))
    tail = " -> ".join(map(str, route[-3:]))
    print(f"  {head} -> ... -> {tail}")

    # sanity: the route's cost equals the reported distance
    cost = 0.0
    for u, v in zip(route, route[1:]):
        dsts, ws = city.neighbors(u)
        cost += float(ws[np.flatnonzero(dsts == v)].min())
    assert cost == float(fleet.dist[far])
    print("route cost verified against the distance field")


if __name__ == "__main__":
    main()
