#!/usr/bin/env python
"""Logistics dispatch: multi-source SSSP and path reconstruction.

Scenario: a delivery company has several depots on a road network and
needs, for every address, (a) the travel time from its *nearest* depot
and (b) the actual route.  One multi-source ADDS run answers both — the
distance field is the lower envelope over depots and the shortest-path
tree roots every vertex at its nearest depot.

The second half runs the same operation as a *dispatch desk*: a
:mod:`repro.serve` Session holds the city graph, dispatchers fire
per-depot ETA queries all day, and the distance cache means each depot
is solved once no matter how many queries ask about it.  The envelope
over the served per-depot fields must equal the one multi-source run —
checked at the end.

Run:  python examples/logistics_dispatch.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.serve import Session


def main() -> None:
    city = repro.grid_road(90, 60, max_weight=4096, seed=21)
    n = city.num_vertices
    rng = np.random.default_rng(7)
    depots = sorted(int(v) for v in rng.choice(n, size=4, replace=False))
    print(f"road network: {n} intersections, {city.num_edges} road segments")
    print(f"depots at vertices {depots}")
    print()

    # one multi-source run instead of four single-source runs
    fleet = repro.sssp(city, depots[0], sources=depots)
    singles = [repro.sssp(city, d) for d in depots]
    envelope = np.minimum.reduce([r.dist for r in singles])
    assert np.allclose(fleet.dist, envelope)
    total_single_work = sum(r.work_count for r in singles)
    print(f"multi-source run: work {fleet.work_count} "
          f"(vs {total_single_work} for 4 separate runs, "
          f"{total_single_work / fleet.work_count:.1f}x saved), "
          f"time {fleet.time_us:.0f}us")
    print()

    # service-area sizes: which depot serves how many addresses
    # (walk each address's path back to its root depot)
    owners = np.full(n, -1)
    pred = fleet.predecessors
    for d in depots:
        owners[d] = d
    order = np.argsort(fleet.dist)  # roots settle before their subtrees
    for v in order:
        if owners[v] < 0 and pred[v] >= 0:
            owners[v] = owners[pred[v]]
    print("service areas (addresses per depot):")
    for d in depots:
        count = int((owners == d).sum())
        print(f"  depot {d:5d}: {count:5d} addresses "
              f"({100 * count / n:.0f}%)")
    print()

    # a concrete dispatch: route to the hardest-to-reach address
    far = int(np.argmax(np.where(np.isfinite(fleet.dist), fleet.dist, -1)))
    route = fleet.path_to(far)
    print(f"worst-case address: vertex {far}, travel cost {fleet.dist[far]:.0f}")
    print(f"dispatched from depot {route[0]} via {len(route)} intersections:")
    head = " -> ".join(map(str, route[:6]))
    tail = " -> ".join(map(str, route[-3:]))
    print(f"  {head} -> ... -> {tail}")

    # sanity: the route's cost equals the reported distance
    cost = 0.0
    for u, v in zip(route, route[1:]):
        dsts, ws = city.neighbors(u)
        cost += float(ws[np.flatnonzero(dsts == v)].min())
    assert cost == float(fleet.dist[far])
    print("route cost verified against the distance field")
    print()

    dispatch_desk(city, depots, fleet)


def dispatch_desk(city, depots, fleet, n_queries=80, seed=5):
    """A day at the dispatch desk, served through a Session.

    Each query is "ETA from depot D to these addresses" — single-source
    with explicit targets.  Only ``len(depots)`` distinct sources exist,
    so after one solve per depot every later query is a cache hit; the
    batcher coalesces whatever arrives together.  The per-depot fields
    the service hands out recompose into exactly the multi-source
    envelope computed above.
    """
    rng = np.random.default_rng(seed)
    n = city.num_vertices
    print(f"dispatch desk: {n_queries} ETA queries over {len(depots)} depots")
    with Session(solver="dijkstra", autostart=False) as s:
        s.add_graph("city", city)
        futures = []
        for i in range(n_queries):
            depot = depots[int(rng.integers(len(depots)))]
            addresses = rng.integers(0, n, size=int(rng.integers(1, 5)))
            futures.append(s.submit("city", depot, targets=addresses))
            if len(futures) % 10 == 0:  # queries arrive in bursts of 10
                s.serve_pending()
        s.serve_pending()
        results = [f.result() for f in futures]
        lat_ms = np.sort([r.latency_s for r in results]) * 1e3
        c = s.counters()
        print(f"  latency p50 {np.percentile(lat_ms, 50):.1f} ms, "
              f"p99 {np.percentile(lat_ms, 99):.1f} ms; "
              f"{s.executor.dispatched} solves for "
              f"{c['serve_admitted']:.0f} queries "
              f"({c['serve_cache_hits']:.0f} cache hits, "
              f"{s.cache.hit_rate:.0%} hit rate)")
        # the served per-depot fields recompose the fleet envelope
        per_depot = {r.source: r.dist for r in results}
        envelope = np.minimum.reduce([per_depot[d] for d in depots])
        assert np.allclose(fleet.dist, envelope)
        print("  served per-depot fields recompose the multi-source envelope")


if __name__ == "__main__":
    main()
