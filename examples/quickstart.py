#!/usr/bin/env python
"""Quickstart: run ADDS and the paper's baselines on one graph.

Builds a mid-sized road-network graph, solves SSSP with every
implementation from the paper's §6.1.2 plus ADDS, verifies they agree,
and prints the artifact-style result lines (graph, time, work count).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.validation import assert_results_match


def main() -> None:
    # A road-network analog: 64x48 grid, weights drawn like travel times.
    graph = repro.grid_road(64, 48, max_weight=8192, seed=7)
    print(f"graph: {graph.name}  |V|={graph.num_vertices}  |E|={graph.num_edges}")
    print()

    algorithms = ["adds", "nf", "gun-nf", "gun-bf", "nv", "cpu-ds", "dijkstra"]
    results = {}
    for name in algorithms:
        results[name] = repro.sssp(graph, source=0, algorithm=name)

    # the artifact's verification step: all solvers must agree (NV rounds
    # through float32, hence the tolerance)
    for name in algorithms[1:]:
        assert_results_match(results["adds"], results[name], atol=1.0)
    print("all implementations agree on the distances\n")

    print(f"{'solver':10s} {'time (us)':>12s} {'work (vertices)':>16s} {'vs adds':>8s}")
    t_adds = results["adds"].time_us
    for name in algorithms:
        r = results[name]
        print(
            f"{name:10s} {r.time_us:12.1f} {r.work_count:16d} "
            f"{r.time_us / t_adds:7.2f}x"
        )

    r = results["adds"]
    print()
    print("ADDS internals:")
    print(f"  initial delta : {r.stats['initial_delta']:.1f} (Davidson heuristic)")
    print(f"  final delta   : {r.stats['final_delta']:.1f} "
          f"({r.stats['delta_adjustments']} run-time adjustments)")
    print(f"  bucket rotations (head switches): {r.stats['rotations']}")
    print(f"  work items pushed/completed     : {r.stats['total_pushed']}"
          f"/{r.stats['total_completed']}")
    print(f"  allocator pool high water       : {r.stats['pool_high_water']} blocks")
    print(f"  average parallelism (edges)     : {r.timeline.time_average():.0f}")


if __name__ == "__main__":
    main()
