#!/usr/bin/env python
"""Δ tuning: the tradeoff of §5.5 and Figures 4/6/7, hands on.

Sweeps a static Δ across three structurally different graphs and prints
the time/work curves (Figure 7's experiment), then runs the dynamic
controller and shows its Δ trace converging near the best static point
without being told anything about the graph.

Run:  python examples/delta_tuning.py
"""

from __future__ import annotations

import repro
from repro.core import AddsConfig


def sweep(graph, multipliers=(0.0625, 0.25, 1.0, 4.0, 16.0)):
    heuristic = repro.davidson_delta(graph)
    static_cfg = AddsConfig().static_delta_ablation()
    rows = []
    for m in multipliers:
        delta = max(1.0, heuristic * m)
        r = repro.sssp(graph, 0, config=static_cfg, delta=delta)
        rows.append((m, delta, r.time_us, r.work_count, r.stats["high_clips"]))
    return heuristic, rows


def main() -> None:
    graphs = {
        "power law (rmat)": repro.named_graph("rmat22-mini"),
        "road network": repro.named_graph("road-usa-mini"),
        "FEM mesh (msdoor)": repro.named_graph("msdoor-mini"),
    }

    for label, graph in graphs.items():
        heuristic, rows = sweep(graph)
        best_t = min(t for _, _, t, _, _ in rows)
        best_w = min(w for _, _, _, w, _ in rows)
        print(f"== {label}: {graph.name} (heuristic delta = {heuristic:.0f})")
        print(f"   {'delta':>10s} {'time(us)':>10s} {'time rel':>9s} "
              f"{'work':>8s} {'work rel':>9s} {'clipped':>8s}")
        for m, d, t, w, clips in rows:
            marks = []
            if t == best_t:
                marks.append("best-perf")
            if w == best_w:
                marks.append("best-work")
            if clips > 0:
                marks.append("CLIP")
            print(f"   {d:10.0f} {t:10.1f} {t / best_t:8.2f}x "
                  f"{w:8d} {w / best_w:8.2f}x {clips:8d}  {' '.join(marks)}")

        # now the dynamic controller, starting from the heuristic
        r = repro.sssp(graph, 0)  # dynamic ADDS, all defaults
        print(f"   dynamic: time {r.time_us:.1f}us ({r.time_us / best_t:.2f}x of "
              f"best static), work {r.work_count}")
        trace = r.stats["delta_trace"]
        if trace:
            path = " -> ".join(f"{d:.0f}" for _, d in trace[:8])
            print(f"   delta trace: {r.stats['initial_delta']:.0f} -> {path}")
        else:
            print(f"   delta trace: stayed at {r.stats['initial_delta']:.0f} "
                  "(heuristic already in the controller's comfort band)")
        print()

    print("Takeaways (matching Figure 7):")
    print(" - work always falls as delta shrinks, until clipping (CLIP rows);")
    print(" - on saturated graphs the best-perf point coincides with best-work;")
    print(" - on starved (road) graphs best-perf needs a larger delta than")
    print("   best-work - extra work is cheaper than idle hardware;")
    print(" - the dynamic controller lands near best-perf with no per-graph input.")


if __name__ == "__main__":
    main()
