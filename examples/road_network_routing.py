#!/usr/bin/env python
"""Road-network routing: the paper's high-diameter motivating workload.

Scenario: a navigation service precomputes shortest travel times from a
depot to every intersection of a city-scale road network.  Road graphs
are the worst case for BSP solvers (§4.2: "for the road.USA graph, the
average work count per iteration is only 800, while a RTX 2080 GPU has
68K hardware threads") and the showcase for ADDS's asynchronous
scheduler.

This example
1. builds a road grid plus an irregular geometric road network,
2. compares ADDS with Near-Far and Bellman-Ford,
3. prints the per-iteration starvation that kills BSP on this class,
4. derives an isochrone (reachable-within-budget) map from the result, and
5. serves a burst of routing queries through a :mod:`repro.serve`
   Session — the queue/batcher/cache path a navigation backend would
   run — and checks the served answers against the direct solves above.

Run:  python examples/road_network_routing.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.serve import Session


def analyze(graph, source=0):
    print(f"== {graph.name}: |V|={graph.num_vertices} |E|={graph.num_edges}")
    adds = repro.sssp(graph, source, algorithm="adds")
    nf = repro.sssp(graph, source, algorithm="nf")
    bf = repro.sssp(graph, source, algorithm="gun-bf")

    print(f"   {'solver':8s} {'time(us)':>10s} {'work':>8s} {'supersteps':>10s}")
    for r in (adds, nf, bf):
        steps = r.stats.get("supersteps", "-")
        print(f"   {r.solver:8s} {r.time_us:10.1f} {r.work_count:8d} {str(steps):>10s}")

    # The §4.2 diagnosis: average work available per BSP iteration.
    per_iter = nf.work_count / max(1, nf.stats["supersteps"])
    device = repro.default_gpu()
    print(f"   NF avg work/iteration: {per_iter:.0f} items "
          f"(device has {device.total_threads} threads) -> "
          f"{'starved' if per_iter * graph.average_degree() < device.total_threads / 4 else 'utilized'}")
    print(f"   ADDS speedup over NF: {nf.time_us / adds.time_us:.2f}x   "
          f"work ratio (ADDS/NF): {adds.work_count / nf.work_count:.2f}x")
    return adds


def isochrones(graph, result, budgets):
    """Reachable-intersection counts within each travel-time budget."""
    finite = result.dist[np.isfinite(result.dist)]
    print("   isochrones (reachable vertices within travel budget):")
    for frac, label in zip(budgets, ("near", "mid", "far")):
        budget = float(np.quantile(finite, frac))
        count = int((result.dist <= budget).sum())
        print(f"     {label}: budget {budget:8.0f} -> {count:6d} vertices "
              f"({100 * count / graph.num_vertices:.0f}%)")


def serve_burst(graph, n_queries=60, seed=11):
    """The same routing workload as a *service*: a burst of queries hits
    a Session, gets coalesced into batches, and repeat sources are
    answered from the distance cache.  Every served distance is
    bit-identical to the direct solves above (same solvers underneath) —
    asserted at the end."""
    rng = np.random.default_rng(seed)
    hot = [int(v) for v in rng.choice(graph.num_vertices, size=6, replace=False)]
    print(f"   serving {n_queries} routing queries "
          f"({len(hot)} popular origins + cold traffic):")
    with Session(solver="dijkstra", max_batch=16, autostart=False) as s:
        s.add_graph(graph.name, graph)
        futures = []
        for _ in range(n_queries):
            if rng.random() < 0.75:
                origin = hot[int(rng.integers(len(hot)))]
            else:
                origin = int(rng.integers(graph.num_vertices))
            dest = int(rng.integers(graph.num_vertices))
            futures.append(s.submit(graph.name, origin, targets=[dest]))
            if len(futures) % 12 == 0:  # queries arrive in bursts
                s.serve_pending()
        s.serve_pending()
        results = [f.result() for f in futures]
        lat_ms = np.sort([r.latency_s for r in results]) * 1e3
        c = s.counters()
        print(f"     latency p50 {np.percentile(lat_ms, 50):.1f} ms, "
              f"p99 {np.percentile(lat_ms, 99):.1f} ms; "
              f"{s.executor.dispatched} solves in "
              f"{len(s.batch_sizes)} batches, "
              f"{c['serve_cache_hits']:.0f} cache hits "
              f"({s.cache.hit_rate:.0%} hit rate)")
    # the service changed the plumbing, not the answers
    check = next(r for r in results if r.source == hot[0])
    direct = repro.sssp(graph, hot[0], algorithm="dijkstra")
    assert np.array_equal(check.dist, direct.dist)
    print("     served distances bit-match the direct solve")


def main() -> None:
    # 1. a Manhattan-style grid city
    grid = repro.grid_road(120, 70, max_weight=8192, seed=3)
    adds = analyze(grid)
    isochrones(grid, adds, (0.25, 0.5, 0.9))
    serve_burst(grid)
    print()

    # 2. an organically grown road network (k-nearest-neighbour geometry,
    #    weights proportional to distance)
    geo = repro.random_geometric(6000, k=5, seed=4)
    adds = analyze(geo)
    isochrones(geo, adds, (0.25, 0.5, 0.9))
    serve_burst(geo)
    print()

    # 3. the parallelism-over-time contrast of Figure 11, in ASCII
    from repro.analysis import ascii_series

    nf = repro.sssp(grid, 0, algorithm="nf")
    print(ascii_series(
        {"adds": adds_timeline_rows(grid), "nf": nf.timeline.to_rows()},
        log_y=True,
        title="parallelism (edges in flight) over time - road grid",
    ))


def adds_timeline_rows(graph):
    return repro.sssp(graph, 0, algorithm="adds").timeline.to_rows()


if __name__ == "__main__":
    main()
